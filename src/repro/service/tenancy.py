"""Deterministic multi-tenant admission on top of one live simulation.

The server's correctness bar is brutal: any interleaving of tenant
submissions over the wire must finish byte-identical to an offline batch
run of the merged trace.  The engine itself guarantees that *given the
same jobs in the same order*; this module guarantees the same jobs in the
same order.

The mechanism is a per-tenant **watermark**.  Each tenant's submissions
must be non-decreasing in arrival time, so a tenant's latest ``at`` is a
promise: nothing earlier will ever arrive from it.  The merge frontier
``W = min(watermarks)`` is therefore a time below which the merged trace
is complete, whatever the network interleaving.  :meth:`TenantMux.drive`
admits exactly the buffered jobs with ``at < W`` — sorted by
``(at, tenant, seq)`` and numbered from one global counter, so job ids are
a pure function of the submitted payloads — and advances the engine
*strictly* below ``W`` (an arrival exactly at ``W`` may still be pending,
and arrivals order ahead of timers at equal timestamps).

Draining a tenant lifts its watermark to ``+inf``; once every tenant has
drained, ``W = +inf`` and the remaining buffer flushes.

:func:`merged_workload` replays the identical admission rule over a
complete submission map in one shot — the offline referee the soak tests
compare against.
"""

from __future__ import annotations

import math
import zlib
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.job import Job
from ..workload.model import Workload
from .session import LiveSimulation

#: payload fields a tenant may send per job (all times in seconds)
JOB_FIELDS = ("at", "nodes", "runtime", "wcl", "user")


class TenantError(ValueError):
    """A tenant broke the submission protocol (the session survives)."""


def default_user_id(tenant: str) -> int:
    """Stable fallback user id for a tenant (crc32 of its name), so user
    identities never depend on connection order."""
    return zlib.crc32(tenant.encode("utf-8")) & 0x7FFFFFFF


def build_job(job_id: int, payload: Mapping[str, object], user_id: int) -> Job:
    """One wire payload -> one engine job.

    Shared verbatim by the online admission path and the offline
    :func:`merged_workload` referee; byte-identical results depend on the
    two paths constructing byte-identical jobs.
    """
    unknown = sorted(set(payload) - set(JOB_FIELDS))
    if unknown:
        raise TenantError(
            f"unknown job field{'s' if len(unknown) > 1 else ''} "
            f"{unknown}; known: {', '.join(JOB_FIELDS)}"
        )
    try:
        at = float(payload["at"])
        nodes = int(payload["nodes"])
        runtime = float(payload["runtime"])
    except KeyError as exc:
        raise TenantError(f"job payload missing required field {exc.args[0]!r}") from None
    except (TypeError, ValueError) as exc:
        raise TenantError(f"malformed job payload: {exc}") from None
    wcl = float(payload.get("wcl", runtime))
    try:
        return Job(
            id=job_id,
            submit_time=at,
            nodes=nodes,
            runtime=runtime,
            wcl=wcl,
            user_id=int(payload.get("user", user_id)),
        )
    except ValueError as exc:
        raise TenantError(str(exc)) from None


class TenantBuffer:
    """One tenant's bounded pending buffer and watermark."""

    __slots__ = ("name", "user_id", "watermark", "drained", "pending", "_seq",
                 "submitted")

    def __init__(self, name: str, user_id: int, watermark: float) -> None:
        self.name = name
        self.user_id = user_id
        #: highest ``at`` promised so far; future submissions must be >= it
        self.watermark = watermark
        self.drained = False
        #: buffered (at, seq, payload) not yet admitted to the engine
        self.pending: List[Tuple[float, int, Mapping[str, object]]] = []
        self._seq = 0
        self.submitted = 0

    @property
    def frontier(self) -> float:
        return math.inf if self.drained else self.watermark

    def next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq


class TenantMux:
    """Merge tenant submission streams into one live simulation,
    deterministically."""

    def __init__(self, live: LiveSimulation, max_pending: int = 1024) -> None:
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        self.live = live
        self.max_pending = max_pending
        self.tenants: Dict[str, TenantBuffer] = {}
        self._next_job_id = len(live.engine.jobs)
        self.admitted = 0

    # -- registration ------------------------------------------------------------

    def register(self, name: str, user_id: Optional[int] = None) -> TenantBuffer:
        """Register a tenant; its watermark starts at the engine clock, so
        a late joiner cannot rewrite already-simulated history."""
        if not name:
            raise TenantError("tenant name must be non-empty")
        if name in self.tenants:
            raise TenantError(f"tenant {name!r} is already registered")
        buf = TenantBuffer(
            name,
            default_user_id(name) if user_id is None else int(user_id),
            watermark=self.live.now,
        )
        self.tenants[name] = buf
        return buf

    def _buffer(self, name: str) -> TenantBuffer:
        try:
            return self.tenants[name]
        except KeyError:
            raise TenantError(f"unknown tenant {name!r}; send hello first") from None

    # -- submission --------------------------------------------------------------

    def backlog(self, name: str) -> int:
        return len(self._buffer(name).pending)

    def has_room(self, name: str, n: int = 1) -> bool:
        return len(self._buffer(name).pending) + n <= self.max_pending

    def submit(self, name: str, jobs: Sequence[Mapping[str, object]]) -> int:
        """Buffer a batch of job payloads for one tenant.

        Arrival times must be non-decreasing per tenant (that ordering IS
        the watermark promise).  Capacity is the caller's job: the async
        layer awaits room *before* calling, so a full buffer here is a
        protocol violation, not backpressure.
        """
        buf = self._buffer(name)
        if buf.drained:
            raise TenantError(f"tenant {name!r} already drained")
        if len(buf.pending) + len(jobs) > self.max_pending:
            raise TenantError(
                f"tenant {name!r} buffer overflow: "
                f"{len(buf.pending)} pending + {len(jobs)} submitted "
                f"> max_pending={self.max_pending}"
            )
        staged = []
        mark = buf.watermark
        for payload in jobs:
            try:
                at = float(payload["at"])
            except (KeyError, TypeError, ValueError):
                raise TenantError(
                    "every job payload needs a numeric 'at' arrival time"
                ) from None
            if at < mark:
                raise TenantError(
                    f"tenant {name!r} arrival times must be non-decreasing: "
                    f"got at={at} after watermark {mark}"
                )
            mark = at
            staged.append((at, buf.next_seq(), payload))
        buf.pending.extend(staged)
        buf.watermark = mark
        buf.submitted += len(staged)
        return len(staged)

    def drain(self, name: str) -> None:
        """Tenant promises no further submissions (watermark -> +inf)."""
        self._buffer(name).drained = True

    @property
    def all_drained(self) -> bool:
        return bool(self.tenants) and all(t.drained for t in self.tenants.values())

    @property
    def frontier(self) -> float:
        """The merge frontier W: below it the merged trace is complete."""
        if not self.tenants:
            return self.live.now
        return min(t.frontier for t in self.tenants.values())

    # -- admission ---------------------------------------------------------------

    def drive(self) -> Dict[str, int]:
        """Admit every safely-merged job and advance the engine to the
        frontier.  Idempotent between submissions; safe to call after any
        protocol event."""
        w = self.frontier
        ready: List[Tuple[float, str, int, Mapping[str, object], int]] = []
        for buf in self.tenants.values():
            keep = []
            for at, seq, payload in buf.pending:
                if at < w:
                    ready.append((at, buf.name, seq, payload, buf.user_id))
                else:
                    keep.append((at, seq, payload))
            buf.pending = keep
        ready.sort(key=lambda item: (item[0], item[1], item[2]))
        jobs = []
        for at, _name, _seq, payload, uid in ready:
            jobs.append(build_job(self._next_job_id, payload, uid))
            self._next_job_id += 1
        if jobs:
            self.live.submit(jobs)
        self.admitted += len(jobs)
        stepped = self.live.advance(w, inclusive=False) if w > self.live.now else 0
        return {"admitted": len(jobs), "events": stepped}

    # -- reporting ---------------------------------------------------------------

    def status(self) -> Dict[str, object]:
        return {
            "frontier": self.frontier,
            "now": self.live.now,
            "admitted": self.admitted,
            "tenants": {
                name: {
                    "watermark": buf.watermark,
                    "drained": buf.drained,
                    "pending": len(buf.pending),
                    "submitted": buf.submitted,
                }
                for name, buf in sorted(self.tenants.items())
            },
        }


def merged_workload(
    submissions: Mapping[str, Sequence[Mapping[str, object]]],
    system_size: int,
    name: str = "service-merged",
    user_ids: Optional[Mapping[str, int]] = None,
) -> Workload:
    """The offline referee: the workload a complete submission map merges
    to, independent of any interleaving.

    Feeding the returned workload to the batch runner must produce results
    byte-identical to streaming the same payloads through a server — both
    paths sort by ``(at, tenant, seq)`` and number jobs from zero via
    :func:`build_job`.
    """
    entries = []
    for tenant in submissions:
        uid = (user_ids or {}).get(tenant, default_user_id(tenant))
        for seq, payload in enumerate(submissions[tenant]):
            entries.append((float(payload["at"]), tenant, seq, payload, uid))
    entries.sort(key=lambda item: (item[0], item[1], item[2]))
    jobs = [
        build_job(job_id, payload, uid)
        for job_id, (_at, _tenant, _seq, payload, uid) in enumerate(entries)
    ]
    return Workload(name=name, system_size=system_size, jobs=jobs)
