"""One live, incrementally-driven simulation (the in-process service core).

A :class:`LiveSimulation` wraps an :class:`~repro.core.engine.Engine` in its
incremental form — ``start / ingest / step_until / finish`` — and keeps the
metric observers of :func:`repro.experiments.runner.run_policy` attached from
the first event, so a session that is fed the same jobs a batch run would
read from a workload finishes with a byte-identical
:meth:`~repro.core.results.SimulationResult.digest`.

On top of the engine it adds the three service verbs:

* :meth:`snapshot` — live per-user fairness / utilization / queue depth,
  read straight from the attached observers (no re-simulation);
* :meth:`whatif` — fork the warm engine state, apply scheduler-parameter
  overrides to the fork, and drain both the variant and an unmodified
  baseline fork to completion.  Completed history is *inherited*, not
  re-simulated: both forks start at the parent's event count and completed
  jobs keep their recorded times;
* :meth:`finish` — seal the run and derive the full
  :class:`~repro.experiments.runner.PolicyRun` bundle through the same
  pipeline as the batch path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

from ..core.cluster import Cluster
from ..core.engine import Engine
from ..core.job import Job, JobState
from ..experiments.runner import PolicyRun, RunOptions, derive_policy_run
from ..metrics.fairness import HybridFSTObserver
from ..metrics.loc import LossOfCapacityObserver
from ..metrics.users import per_user_fairness
from ..sched.registry import get_policy, validate_overrides

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api imports us lazily)
    from ..api import SimulationRequest


class LiveSimulation:
    """An incremental policy simulation with live metrics and warm forks."""

    def __init__(
        self,
        policy: str,
        *,
        system_size: int,
        options: Optional[RunOptions] = None,
        jobs: Sequence[Job] = (),
        observers: Sequence = (),
    ) -> None:
        spec = get_policy(policy)
        if spec.max_runtime is not None:
            raise ValueError(
                f"policy {policy!r} applies a runtime-limit transform "
                f"(max_runtime={spec.max_runtime}); chunk chains are "
                "numbered over the whole trace, which an incremental "
                "session cannot replicate — run it through the batch path"
            )
        opts = options or RunOptions()
        self.policy = policy
        self.options = opts
        # the exact observer stack of run_policy(), in the same order, so
        # live and batch runs of the same trace digest identically
        self._fst_obs = HybridFSTObserver(opts.estimate_mode)
        loc_obs = LossOfCapacityObserver()
        extra = [
            HybridFSTObserver(opts.estimate_mode, basis=o)
            for o in opts.reference_orders
            if o != "fairshare"
        ]
        self.engine = Engine(
            Cluster(system_size),
            spec.make_scheduler(**dict(opts.scheduler_overrides)),
            jobs,
            observers=[self._fst_obs, loc_obs, *extra, *observers],
            kill_policy=opts.kill_policy,
            validate=opts.validate,
        )
        self.engine.start()
        self._run: Optional[PolicyRun] = None

    @classmethod
    def from_request(
        cls,
        request: "SimulationRequest",
        system_size: Optional[int] = None,
    ) -> "LiveSimulation":
        """Open a session from an api request.

        With ``system_size`` and no workload source the session starts
        empty (jobs arrive via :meth:`submit`); otherwise the request's
        workload is pre-loaded and the cluster sized from it.
        """
        opts = request.resolve_options()
        empty = (
            system_size is not None
            and request.workload is None
            and request.scenario is None
            and request.swf is None
        )
        if empty:
            return cls(
                request.policy,
                system_size=system_size,
                options=opts,
                observers=request.observers,
            )
        wl = request.resolve_workload()
        return cls(
            request.policy,
            system_size=system_size or wl.system_size,
            options=opts,
            jobs=wl.jobs,
            observers=request.observers,
        )

    # -- lifecycle ---------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.engine.now

    @property
    def finished(self) -> bool:
        return self._run is not None

    def submit(self, jobs: Sequence[Job]) -> List[Job]:
        """Ingest new jobs (engine copies are returned)."""
        return self.engine.ingest(jobs)

    def advance(self, until: float, inclusive: bool = True) -> int:
        """Process due events up to ``until``; return how many ran."""
        return self.engine.step_until(until, inclusive=inclusive)

    def finish(self) -> PolicyRun:
        """Drain remaining work and derive the full metric bundle
        (idempotent)."""
        if self._run is None:
            result = self.engine.finish()
            self._run = derive_policy_run(
                self.policy,
                result,
                epsilon=self.options.epsilon,
                reference_orders=self.options.reference_orders,
            )
        return self._run

    def close(self) -> None:
        """Alias used by the context-manager protocol; sessions hold no
        external resources, so this only seals an unfinished engine."""
        if self._run is None and self.engine.jobs:
            self.finish()

    def __enter__(self) -> "LiveSimulation":
        return self

    def __exit__(self, *exc) -> None:
        if exc[0] is None:
            self.close()

    # -- live metrics ------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Current engine state plus live per-user fairness.

        Everything is read from state the engine and its metric observers
        already maintain; taking a snapshot never schedules or simulates
        anything.
        """
        jobs = self.engine.jobs
        by_state = {s: 0 for s in JobState}
        for j in jobs:
            by_state[j.state] += 1
        cluster = self.engine.cluster
        return {
            "now": self.engine.now,
            "events_processed": self.engine.events_processed,
            "jobs_submitted": len(jobs),
            "jobs_completed": by_state[JobState.COMPLETED],
            "jobs_running": by_state[JobState.RUNNING],
            "jobs_queued": by_state[JobState.QUEUED] + by_state[JobState.PENDING],
            "free_nodes": cluster.free_nodes,
            "utilization_now": cluster.used_nodes / cluster.size,
            "per_user": self.per_user_metrics(),
        }

    def per_user_metrics(
        self, jobs: Optional[Sequence[Job]] = None
    ) -> Dict[str, Dict[str, float]]:
        """Per-user fairness over completed jobs, JSON-shaped.

        The same projection serves live snapshots (jobs completed so far)
        and the final report (``finish().metric_jobs``), so a streamed
        session and an offline batch run of the merged trace render
        byte-identical payloads.
        """
        if jobs is None:
            jobs = [j for j in self.engine.jobs if j.state is JobState.COMPLETED]
        if not jobs:
            return {}
        stats = per_user_fairness(
            jobs, self._fst_obs.fst, epsilon=self.options.epsilon
        )
        return {
            str(uid): {
                "n_jobs": rec.n_jobs,
                "total_work": rec.total_work,
                "avg_wait": rec.avg_wait,
                "avg_miss_time": rec.avg_miss_time,
                "percent_unfair": rec.percent_unfair,
                "worst_miss": rec.worst_miss,
            }
            for uid, rec in sorted(stats.items())
        }

    # -- warm what-if ------------------------------------------------------------

    def whatif(
        self, overrides: Mapping[str, object]
    ) -> Dict[str, object]:
        """Answer "what if the scheduler ran with these parameters from
        *now* on?" without re-simulating completed history.

        Two deep forks of the live engine are drained to completion: one
        untouched (the baseline the live run is heading for) and one with
        ``overrides`` applied to its scheduler.  Both inherit the parent's
        clock, queues, running jobs, and event count, so only the future
        is simulated; the live session itself is never perturbed.
        """
        validate_overrides(self.policy, overrides)
        events_before = self.engine.events_processed
        completed_before = sum(
            1 for j in self.engine.jobs if j.state is JobState.COMPLETED
        )
        baseline = self.engine.fork()
        variant = self.engine.fork()
        self._apply_overrides(variant, overrides)
        base_run = derive_policy_run(
            self.policy, baseline.finish(), epsilon=self.options.epsilon
        )
        var_run = derive_policy_run(
            self.policy, variant.finish(), epsilon=self.options.epsilon
        )
        return {
            "overrides": dict(overrides),
            "forked_at": self.engine.now,
            "events_inherited": events_before,
            "jobs_completed_before_fork": completed_before,
            "baseline": _whatif_block(base_run, events_before),
            "variant": _whatif_block(var_run, events_before),
        }

    @staticmethod
    def _apply_overrides(fork: Engine, overrides: Mapping[str, object]) -> None:
        sched = fork.scheduler
        for key, value in overrides.items():
            if hasattr(sched, key):
                setattr(sched, key, value)
            elif hasattr(sched.tracker, key):
                setattr(sched.tracker, key, value)
            else:
                raise ValueError(
                    f"override {key!r} is a construction-only parameter; "
                    "a warm fork cannot change it mid-run"
                )


def _whatif_block(run: PolicyRun, events_inherited: int) -> Dict[str, object]:
    s, f = run.summary, run.fairness
    return {
        "events_simulated": run.result.events_processed - events_inherited,
        "n_jobs": s.n_jobs,
        "avg_wait": s.avg_wait,
        "avg_turnaround": s.avg_turnaround,
        "utilization": s.utilization,
        "percent_unfair": f.percent_unfair,
        "avg_miss_time": f.average_miss_time,
        "digest": run.result.digest(),
    }
