"""Simulation-as-a-service: live sessions and the multi-tenant server.

* :class:`LiveSimulation` — one incrementally-driven simulation with live
  per-user metrics and warm-forked what-if (in-process;
  ``repro.api.open_session`` returns one).
* :class:`TenantMux` / :func:`merged_workload` — deterministic merge of
  concurrent tenant submission streams, and its offline referee.
* :class:`SchedulerService` / :func:`serve` — the asyncio line-JSON TCP
  server (``repro serve`` on the command line).
* :class:`ServiceClient` — the matching asyncio client.

Protocol and determinism contract: docs/SERVICE.md.
"""

from .client import ServiceClient, ServiceError
from .server import SchedulerService, serve, serve_async
from .session import LiveSimulation
from .tenancy import TenantError, TenantMux, build_job, default_user_id, merged_workload

__all__ = [
    "LiveSimulation",
    "SchedulerService",
    "ServiceClient",
    "ServiceError",
    "TenantError",
    "TenantMux",
    "build_job",
    "default_user_id",
    "merged_workload",
    "serve",
    "serve_async",
]
