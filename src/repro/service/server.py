"""The multi-tenant scheduler server: line-JSON over TCP.

One :class:`SchedulerService` owns one :class:`LiveSimulation` and one
:class:`TenantMux`; any number of tenants connect concurrently and stream
job submissions.  Every request is a single JSON object on its own line;
every response is ``{"ok": true, ...}`` or
``{"ok": false, "error": {"code", "message"}}``.  The protocol (and the
determinism contract behind it) is documented in docs/SERVICE.md.

Backpressure: each tenant has a bounded pending buffer; a ``submit`` that
would overflow it *waits* (the response is withheld, which stalls a
well-behaved client and ultimately the TCP window) until the merge
frontier advances and the buffer drains into the engine.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Mapping, Optional, Union

from ..experiments.runner import RunOptions
from .session import LiveSimulation
from .tenancy import TenantError, TenantMux

#: ops a connection may send before (or without) identifying as a tenant
_ANONYMOUS_OPS = frozenset({"hello", "status", "metrics", "whatif", "result", "shutdown"})


def _jsonable(obj):
    """json.dumps default hook: numpy scalars -> Python numbers."""
    if hasattr(obj, "item"):
        return obj.item()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


class SchedulerService:
    """One live simulation shared by every connected tenant."""

    def __init__(
        self,
        policy: str = "easy.fairshare",
        system_size: int = 1024,
        options: Union[RunOptions, Mapping[str, object], None] = None,
        max_pending: int = 512,
    ) -> None:
        opts = (
            options
            if isinstance(options, RunOptions)
            else RunOptions.from_mapping(options)
        )
        self.live = LiveSimulation(policy, system_size=system_size, options=opts)
        self.mux = TenantMux(self.live, max_pending=max_pending)
        self._room = asyncio.Condition()
        self._stop = asyncio.Event()
        self._final: Optional[Dict[str, object]] = None

    # -- driving -----------------------------------------------------------------

    async def _drive(self) -> Dict[str, int]:
        """Admit + advance under the condition lock, then wake any
        submitter waiting for buffer room."""
        async with self._room:
            progress = self.mux.drive()
            self._room.notify_all()
        return progress

    def final_report(self) -> Dict[str, object]:
        """Seal the run and render the final metric payload (memoized).

        ``per_user`` is rendered by the same projection the live snapshot
        uses, so it is byte-comparable against an offline batch run of the
        merged trace.
        """
        if self._final is None:
            self.mux.drive()
            run = self.live.finish()
            s, f = run.summary, run.fairness
            self._final = {
                "policy": run.policy,
                "digest": run.result.digest(),
                "events_processed": run.result.events_processed,
                "summary": {
                    "n_jobs": s.n_jobs,
                    "avg_wait": s.avg_wait,
                    "avg_turnaround": s.avg_turnaround,
                    "avg_slowdown": s.avg_slowdown,
                    "utilization": s.utilization,
                    "makespan": s.makespan,
                },
                "fairness": {
                    "percent_unfair": f.percent_unfair,
                    "avg_miss_time": f.average_miss_time,
                },
                "per_user": self.live.per_user_metrics(run.metric_jobs),
            }
        return self._final

    # -- protocol ----------------------------------------------------------------

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        """One tenant connection: read request lines until EOF/shutdown."""
        tenant: Optional[str] = None
        try:
            while not self._stop.is_set():
                line = await reader.readline()
                if not line:
                    break
                try:
                    resp, tenant = await self._dispatch(line, tenant)
                except TenantError as exc:
                    resp = _error("tenant-protocol", str(exc))
                except (ValueError, KeyError) as exc:
                    resp = _error("bad-request", str(exc))
                writer.write(json.dumps(resp, default=_jsonable).encode() + b"\n")
                await writer.drain()
                if resp.get("bye"):
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _dispatch(self, line: bytes, tenant: Optional[str]):
        try:
            msg = json.loads(line)
        except json.JSONDecodeError as exc:
            return _error("bad-json", str(exc)), tenant
        if not isinstance(msg, dict) or "op" not in msg:
            return _error("bad-request", "each line must be a JSON object with an 'op'"), tenant
        op = msg["op"]
        if tenant is None and op not in _ANONYMOUS_OPS:
            return _error("tenant-protocol", f"op {op!r} requires a hello first"), tenant

        if op == "hello":
            name = str(msg.get("tenant", ""))
            self.mux.register(name, user_id=msg.get("user"))
            return {"ok": True, "tenant": name,
                    "user": self.mux.tenants[name].user_id,
                    "max_pending": self.mux.max_pending}, name

        if op == "submit":
            jobs = msg.get("jobs")
            if not isinstance(jobs, list) or not jobs:
                return _error("bad-request", "submit needs a non-empty 'jobs' list"), tenant
            if len(jobs) > self.mux.max_pending:
                return _error(
                    "bad-request",
                    f"batch of {len(jobs)} exceeds max_pending={self.mux.max_pending}",
                ), tenant
            # backpressure: hold the response until the buffer has room
            async with self._room:
                await self._room.wait_for(
                    lambda: self.mux.has_room(tenant, len(jobs))
                    or self._stop.is_set()
                )
                if self._stop.is_set():
                    return {"ok": True, "accepted": 0, "bye": True}, tenant
                accepted = self.mux.submit(tenant, jobs)
            progress = await self._drive()
            return {"ok": True, "accepted": accepted,
                    "pending": self.mux.backlog(tenant),
                    "now": self.live.now, **progress}, tenant

        if op == "drain":
            self.mux.drain(tenant)
            progress = await self._drive()
            return {"ok": True, "drained": tenant, **progress}, tenant

        if op == "status":
            return {"ok": True, **self.mux.status()}, tenant

        if op == "metrics":
            return {"ok": True, **self.live.snapshot()}, tenant

        if op == "whatif":
            overrides = msg.get("overrides")
            if not isinstance(overrides, dict) or not overrides:
                return _error("bad-request",
                              "whatif needs a non-empty 'overrides' object"), tenant
            return {"ok": True, **self.live.whatif(overrides)}, tenant

        if op == "result":
            if not self.mux.all_drained:
                active = [n for n, b in sorted(self.mux.tenants.items())
                          if not b.drained]
                return _error(
                    "not-drained",
                    f"result needs every tenant drained; still active: {active}"
                    if active else "result needs at least one registered tenant",
                ), tenant
            return {"ok": True, **self.final_report()}, tenant

        if op == "shutdown":
            self._stop.set()
            async with self._room:
                self._room.notify_all()
            return {"ok": True, "bye": True}, tenant

        return _error("bad-request", f"unknown op {op!r}"), tenant


def _error(code: str, message: str) -> Dict[str, object]:
    return {"ok": False, "error": {"code": code, "message": message}}


async def serve_async(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    policy: str = "easy.fairshare",
    system_size: int = 1024,
    options: Union[RunOptions, Mapping[str, object], None] = None,
    max_pending: int = 512,
    ready=None,
) -> None:
    """Run the server until a ``shutdown`` op arrives.

    ``port=0`` binds an ephemeral port; the bound address is announced on
    stdout (``[repro-serve] listening on HOST:PORT``) and passed to the
    optional ``ready(host, port, service)`` callback (tests use it).
    """
    service = SchedulerService(
        policy=policy, system_size=system_size,
        options=options, max_pending=max_pending,
    )
    server = await asyncio.start_server(service.handle, host, port)
    bound = server.sockets[0].getsockname()
    print(f"[repro-serve] listening on {bound[0]}:{bound[1]} "
          f"(policy={policy}, nodes={system_size})", flush=True)
    if ready is not None:
        ready(bound[0], bound[1], service)
    async with server:
        await service._stop.wait()


def serve(host: str = "127.0.0.1", port: int = 0, **kwargs) -> None:
    """Blocking entry point (the ``repro serve`` CLI command)."""
    asyncio.run(serve_async(host, port, **kwargs))
